// Quickstart: run one application alone on the simulated way-
// partitionable Sandy Bridge platform and print its performance and
// energy, then squeeze its LLC allocation and watch the cost — the
// smallest possible tour of the library's public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	sys := core.NewSystem(core.Options{})

	// 471.omnetpp is the paper's exemplar of a high-LLC-utility
	// application (§3.2): every extra way helps it.
	const app = "471.omnetpp"

	fmt.Printf("running %s alone with every LLC allocation:\n\n", app)
	fmt.Printf("%6s  %10s  %8s  %10s\n", "ways", "time (s)", "MPKI", "socket (J)")

	var full core.RunReport
	for _, ways := range []int{12, 8, 4, 2, 1} {
		rep, err := sys.RunAlone(app, 1, ways)
		if err != nil {
			log.Fatal(err)
		}
		if ways == 12 {
			full = rep
		}
		fmt.Printf("%6d  %10.4f  %8.2f  %10.2f   (%+.1f%% vs full cache)\n",
			ways, rep.Seconds, rep.LLCMPKI, rep.SocketJoules,
			(rep.Seconds/full.Seconds-1)*100)
	}

	fmt.Println("\nAs on the paper's prototype: performance degrades smoothly with")
	fmt.Println("capacity (no sharp knees), and the 0.5 MB direct-mapped case is")
	fmt.Println("pathological (§3.2).")
}
