// Bandwidthqos: the paper's conclusion (§8) observes that every
// worst-case slowdown — with or without cache partitioning — came from
// memory-bandwidth contention, and calls for bandwidth/latency QoS
// hardware. This example builds that hardware in simulation: each job
// gets a DRAM bandwidth reservation proportional to its cores, and the
// bandwidth-sensitive victims of Figure 4 are re-measured against the
// stream_uncached hog.
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	const scale = 2e-3
	plain := sched.New(sched.Options{Scale: scale})
	qosCfg := machine.Default()
	qosCfg.BandwidthQoS = true
	qos := sched.New(sched.Options{Machine: &qosCfg, Scale: scale})

	hog := workload.MustByName("stream_uncached")
	victims := []string{"462.libquantum", "470.lbm", "459.GemsFDTD", "fluidanimate", "batik"}

	fmt.Println("slowdown vs the stream_uncached bandwidth hog:")
	fmt.Printf("%-16s  %-10s  %-10s\n", "victim", "no QoS", "with QoS")
	for _, name := range victims {
		app := workload.MustByName(name)

		base := plain.AloneHalf(app).JobByName(name).Seconds
		noQ := plain.RunPair(sched.PairSpec{Fg: app, Bg: hog, Mode: sched.BackgroundLoop}).
			JobByName(name).Seconds / base

		baseQ := qos.AloneHalf(app).JobByName(name).Seconds
		withQ := qos.RunPair(sched.PairSpec{Fg: app, Bg: hog, Mode: sched.BackgroundLoop}).
			JobByName(name).Seconds / baseQ

		fmt.Printf("%-16s  %9.2fx  %9.2fx\n", name, noQ, withQ)
	}

	fmt.Println("\nCache partitioning cannot remove this interference (the hog's")
	fmt.Println("non-temporal stream never touches the LLC); a bandwidth reservation")
	fmt.Println("can — the hardware addition the paper asks for in its conclusion.")
}
