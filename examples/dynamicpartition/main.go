// Dynamicpartition: watch Algorithm 6.1/6.2 at work. 429.mcf alternates
// between low-MPKI phases that need ~1.5 MB of LLC and high-MPKI phases
// that need ~4.5 MB (Figure 12). The controller samples MPKI, grants the
// maximum on each phase change, then shrinks until shrinking hurts. The
// program prints the sampled MPKI/allocation trace — a textual Figure 12.
package main

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	const scale = 2e-3
	r := sched.New(sched.Options{Scale: scale})
	fg := workload.MustByName("429.mcf")
	bg := workload.MustByName("ferret")

	var ctl *partition.Controller
	res := r.RunPair(sched.PairSpec{
		Fg: fg, Bg: bg, Mode: sched.BackgroundLoop,
		Setup: func(m *machine.Machine, fgJob, bgJob *machine.Job) {
			cfg := partition.DefaultControllerConfig()
			cfg.IntervalSeconds = fg.Instructions * scale * 1.5 / 3.4e9 / 500
			ctl = partition.Attach(m, fgJob, bgJob, cfg)
		},
	})

	fmt.Println("429.mcf under the dynamic controller (bg: ferret)")
	fmt.Printf("%-12s  %-8s  %-5s  %s\n", "sim time (s)", "MPKI", "ways", "allocation")
	samples := ctl.Samples()
	step := len(samples) / 40
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(samples); i += step {
		s := samples[i]
		bar := ""
		for k := 0; k < s.Ways; k++ {
			bar += "#"
		}
		fmt.Printf("%-12.5f  %-8.1f  %-5d  %s\n", s.Seconds, s.MPKI, s.Ways, bar)
	}

	fmt.Printf("\nfg completion: %.4f s; %d reallocations; bg completed %.2f iterations\n",
		res.JobByName(fg.Name).Seconds, ctl.Reallocations(),
		res.JobByName(bg.Name).Iterations)
	fmt.Println("High-MPKI phases hold a large allocation; low-MPKI phases yield")
	fmt.Println("ways to the background — no flush, only the replacement mask moves.")
}
