// Clustering: reproduce the §3.5 methodology on a subset of the
// catalog. Each application is characterized by a 19-feature vector
// (thread scaling, LLC capacity curve, prefetch and bandwidth
// sensitivity), features are normalized to [0,1], and hierarchical
// single-linkage clustering groups look-alike applications — the basis
// of Figure 5 and Table 3.
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	ctx := experiments.NewQuickContext(1e-3)
	// A cross-suite slice: the six Table 3 representatives plus a few
	// contrasting applications.
	for _, extra := range []string{"swaptions", "471.omnetpp", "462.libquantum", "h2"} {
		ctx.Apps = append(ctx.Apps, workload.MustByName(extra))
	}

	fmt.Printf("characterizing %d applications (thread scaling, capacity, prefetch, bandwidth)...\n\n",
		len(ctx.Apps))
	res := ctx.Fig5Clustering()
	fmt.Print(res.Table.String())
	fmt.Println("\nsingle-linkage dendrogram:")
	fmt.Print(res.Dendrogram)

	fmt.Println("\nCluster representatives stand in for their members in the")
	fmt.Println("consolidation studies, reducing 45 applications to 6 (§3.5).")
}
