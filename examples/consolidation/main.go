// Consolidation: the paper's central scenario. A latency-sensitive
// foreground application (429.mcf, cluster C1) shares the machine with
// a continuously-running background job (ferret, cluster C3) under each
// LLC management policy. The output reproduces the §5 story: sharing is
// efficient but risky, fair partitioning wastes capacity, biased
// partitioning protects the foreground, and the dynamic controller gets
// the best of both.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	sys := core.NewSystem(core.Options{})

	const fg, bg = "429.mcf", "ferret"
	alone, err := sys.RunAlone(fg, 4, core.AllWays)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("foreground %s alone (2 cores / 4 HTs): %.4f s\n\n", fg, alone.Seconds)

	fmt.Printf("co-scheduling %s (cores 0-1) with %s (cores 2-3):\n\n", fg, bg)
	fmt.Printf("%-8s  %-11s  %-12s  %-14s  %-10s\n",
		"policy", "LLC split", "fg slowdown", "bg iterations", "socket (J)")
	for _, pol := range core.Policies() {
		rep, err := sys.Consolidate(fg, bg, pol)
		if err != nil {
			log.Fatal(err)
		}
		split := "12 shared"
		if rep.FgWays > 0 {
			split = fmt.Sprintf("%d / %d", rep.FgWays, rep.BgWays)
		}
		fmt.Printf("%-8s  %-11s  %+10.1f%%  %14.2f  %10.2f\n",
			rep.Policy, split, (rep.FgSlowdown-1)*100, rep.BgThroughput, rep.SocketJoules)
	}

	fmt.Println("\nThe biased split minimizes foreground degradation; the dynamic")
	fmt.Println("controller tracks mcf's phase changes and hands the reclaimed ways")
	fmt.Println("to the background (§6).")
}
