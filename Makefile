# Mirrors .github/workflows/ci.yml: `make ci` is what CI runs.

GO ?= go

.PHONY: build test race bench bench-json lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the concurrent experiment engine (worker pool,
# singleflight memoization, batched Setup-hook runs) under the detector.
race:
	$(GO) test -race -timeout 30m ./...

# One iteration per paper figure; doubles as a regression smoke test.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Benchmark trajectory: the two hot-path benchmarks future PRs must
# not regress, emitted as committed/diffable JSON (BENCH_fleet.json is
# the checked-in baseline; CI uploads the current run as an artifact).
# Two steps (not a pipe) so a failing benchmark fails the target
# instead of being masked by a partially-parsed stream.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkScenarioMix|BenchmarkFleetRun' -benchtime=1x . > /tmp/bench-fleet.out
	$(GO) run ./cmd/benchjson < /tmp/bench-fleet.out > BENCH_fleet.json
	@rm -f /tmp/bench-fleet.out
	@cat BENCH_fleet.json

lint:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "unformatted files:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./...

ci: build lint race bench
