# Mirrors .github/workflows/ci.yml: `make ci` is what CI runs.

GO ?= go

.PHONY: build test race bench lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the concurrent experiment engine (worker pool,
# singleflight memoization, batched Setup-hook runs) under the detector.
race:
	$(GO) test -race -timeout 30m ./...

# One iteration per paper figure; doubles as a regression smoke test.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

lint:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "unformatted files:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./...

ci: build lint race bench
