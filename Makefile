# Mirrors .github/workflows/ci.yml: `make ci` is what CI runs.

GO ?= go

.PHONY: build test race bench bench-json profile lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the concurrent experiment engine (worker pool,
# singleflight memoization, batched Setup-hook runs) under the detector.
race:
	$(GO) test -race -timeout 30m ./...

# One iteration per paper figure; doubles as a regression smoke test.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Benchmark trajectory: the hot-path benchmarks future PRs must not
# regress — the end-to-end rates (scenario mix, fleet run exact and
# fast) plus the hot-path microbenchmarks (one cache access, batched
# trace generation, analytic model build) — emitted as committed/
# diffable JSON (BENCH_fleet.json is the checked-in baseline; CI
# uploads the current run as an artifact and gates on `benchjson
# compare`). Two steps (not a pipe) so a failing benchmark fails the
# target instead of being masked by a partially-parsed stream.
# The end-to-end rates run one full iteration (a whole scenario/fleet
# simulation each; the FleetRun pattern also matches FleetRunFast); the
# microbenchmarks are per-operation and need a time budget to produce
# stable ns/op.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkScenarioMix|BenchmarkFleetRun' -benchtime=1x . > /tmp/bench-fleet.out
	$(GO) test -run '^$$' -bench 'BenchmarkFleetMultiPolicy|BenchmarkFleetChurn|BenchmarkCacheAccess|BenchmarkTraceGen|BenchmarkModelBuild' -benchtime=1s . >> /tmp/bench-fleet.out
	$(GO) run ./cmd/benchjson < /tmp/bench-fleet.out > BENCH_fleet.json
	@rm -f /tmp/bench-fleet.out
	@cat BENCH_fleet.json

# Profiling workflow (see DESIGN.md "Performance"): cpuprofile the
# scenario-mix hot path and print the top functions. The profile stays
# in /tmp for interactive digs: `go tool pprof /tmp/cachepart-cpu.prof`.
profile:
	$(GO) test -run '^$$' -bench BenchmarkScenarioMix -benchtime=5x \
		-cpuprofile /tmp/cachepart-cpu.prof -o /tmp/cachepart-bench.test .
	$(GO) tool pprof -top -nodecount=20 /tmp/cachepart-cpu.prof

lint:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "unformatted files:" >&2; echo "$$out" >&2; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs it)"; \
	fi

ci: build lint race bench
